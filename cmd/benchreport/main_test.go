package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMainErrWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	// Tiny benchtime: the calibration loop still runs every benchmark at
	// least twice (warm-up + measurement) so the report is complete.
	if err := mainErr(out, time.Microsecond, false, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != Schema || rep.Tool != "benchreport" || rep.GoVersion == "" {
		t.Errorf("bad header: %+v", rep)
	}
	want := map[string]bool{}
	for _, b := range benchmarks() {
		want[b.name] = false
	}
	for _, r := range rep.Benchmarks {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected benchmark %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.Iters <= 0 || r.NsPerOp < 0 {
			t.Errorf("%s: iters=%d ns/op=%v", r.Name, r.Iters, r.NsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from report", name)
		}
	}
	// The disabled paths must measure zero allocations even at a tiny
	// budget — this is the acceptance pin, enforced by mainErr itself
	// (a pin violation would have returned an error above).
	for _, r := range rep.Benchmarks {
		if r.PinZeroAllocs && r.AllocsPerOp != 0 {
			t.Errorf("%s: %v allocs/op, want 0", r.Name, r.AllocsPerOp)
		}
	}
}

func TestMainErrList(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr("", 0, true, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) != len(benchmarks()) {
		t.Fatalf("-list printed %d names, want %d:\n%s", len(lines), len(benchmarks()), buf.String())
	}
	for _, want := range []string{"trace/journal_disabled", "obs/ops_disabled", "registry/schedule_traced"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list missing %s", want)
		}
	}
}

func TestMainErrBadOutputPath(t *testing.T) {
	var buf bytes.Buffer
	err := mainErr(filepath.Join(t.TempDir(), "missing-dir", "bench.json"),
		time.Microsecond, false, &buf)
	if err == nil {
		t.Fatal("unwritable output path accepted")
	}
}
