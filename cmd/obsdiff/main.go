// Command obsdiff compares two observability snapshots and prints a
// ranked regression/improvement report. It understands the three JSON
// artifacts the repo's tools emit and auto-detects the format of each
// input:
//
//   - benchreport output (BENCH_*.json): top-level "benchmarks" array;
//     compared on ns/op, with allocs/op and bytes/op deltas noted
//   - internal/obs reports (metrics.json): top-level "series" array of
//     samples; counters compare on count, gauges on value
//   - statusz snapshots (statusz.json): top-level "metrics" array with
//     the same sample schema
//
// The two inputs must carry the same sample schema, so a statusz
// snapshot diffs cleanly against a metrics.json report, but neither
// diffs against a benchmark report.
//
// Usage:
//
//	obsdiff [-tol 2] [-max-regress 0] [-json] OLD NEW
//
// Flags:
//
//	-tol P          |delta| below P percent counts as stable and is
//	                summarized, not listed (default 2)
//	-max-regress P  exit non-zero when any regression exceeds P percent
//	                (0 disables the gate; the report is still written)
//	-json           emit the diff as JSON instead of text
//
// The report is deterministic: rows are ranked by |percent delta|
// (regressions worst-first, improvements best-first) with name order
// breaking ties, so identical inputs always produce identical bytes —
// CI uploads the report as a build artifact next to the snapshots it
// compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"ampsched/internal/obs"
)

// benchResult mirrors cmd/benchreport's per-benchmark row (the schema is
// committed in BENCH_*.json; obsdiff only reads it).
type benchResult struct {
	Name          string  `json:"name"`
	Iters         int     `json:"iters"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	PinZeroAllocs bool    `json:"pin_zero_allocs,omitempty"`
	Guard         bool    `json:"guard,omitempty"`
}

// snapshot is one parsed input file, normalized to either benchmark rows
// or metric samples.
type snapshot struct {
	path  string
	tool  string
	bench map[string]benchResult
	samps map[string]obs.Sample
}

func (s *snapshot) kind() string {
	if s.bench != nil {
		return "bench"
	}
	return "metrics"
}

func (s *snapshot) size() int {
	if s.bench != nil {
		return len(s.bench)
	}
	return len(s.samps)
}

// load parses path and detects its format from the top-level keys.
func load(path string) (*snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Tool       string        `json:"tool"`
		Benchmarks []benchResult `json:"benchmarks"`
		Series     []obs.Sample  `json:"series"`
		Metrics    []obs.Sample  `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s := &snapshot{path: path, tool: probe.Tool}
	switch {
	case probe.Benchmarks != nil:
		s.bench = make(map[string]benchResult, len(probe.Benchmarks))
		for _, b := range probe.Benchmarks {
			s.bench[b.Name] = b
		}
	case probe.Series != nil:
		s.samps = sampleMap(probe.Series)
	case probe.Metrics != nil:
		s.samps = sampleMap(probe.Metrics)
	default:
		return nil, fmt.Errorf("%s: no benchmarks, series or metrics array — not a benchreport, metrics.json or statusz snapshot", path)
	}
	return s, nil
}

func sampleMap(in []obs.Sample) map[string]obs.Sample {
	out := make(map[string]obs.Sample, len(in))
	for _, s := range in {
		out[s.Name] = s
	}
	return out
}

// Row is one compared entry in the diff report.
type Row struct {
	Name string `json:"name"`
	// Unit names the compared primary: "ns/op" for benchmarks, "count"
	// or "value" for metric samples.
	Unit string  `json:"unit"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Pct is the percent delta new vs old; +Inf when old was zero.
	Pct float64 `json:"pct"`
	// Note carries secondary deltas (allocs/op, bytes/op, p95).
	Note string `json:"note,omitempty"`
}

// Diff is the full comparison, ready for JSON export.
type Diff struct {
	Kind         string   `json:"kind"`
	OldPath      string   `json:"old"`
	NewPath      string   `json:"new"`
	TolPct       float64  `json:"tol_pct"`
	Regressions  []Row    `json:"regressions"`
	Improvements []Row    `json:"improvements"`
	Added        []string `json:"added,omitempty"`
	Removed      []string `json:"removed,omitempty"`
	Stable       int      `json:"stable"`
}

// pct returns the percent delta of new vs old, with a +Inf sentinel for
// growth from zero (0 → 0 is no change).
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / math.Abs(oldV) * 100
}

// primary picks the compared scalar of a metric sample: point-in-time
// kinds compare on value, cumulative kinds on count (timers on total
// time, the scalar their count only normalizes).
func primary(s obs.Sample) (string, float64) {
	switch s.Kind {
	case obs.KindGauge, obs.KindEWMA, obs.KindRate:
		return "value", s.Value
	case obs.KindTimer:
		return "total_ns", float64(s.TotalNs)
	default:
		return "count", float64(s.Count)
	}
}

func compare(oldS, newS *snapshot, tolPct float64) (*Diff, error) {
	if oldS.kind() != newS.kind() {
		return nil, fmt.Errorf("cannot diff %s snapshot %s against %s snapshot %s",
			oldS.kind(), oldS.path, newS.kind(), newS.path)
	}
	d := &Diff{Kind: oldS.kind(), OldPath: oldS.path, NewPath: newS.path, TolPct: tolPct}
	if oldS.bench != nil {
		compareBench(d, oldS.bench, newS.bench, tolPct)
	} else {
		compareSamples(d, oldS.samps, newS.samps, tolPct)
	}
	rank(d.Regressions, false)
	rank(d.Improvements, true)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d, nil
}

func compareBench(d *Diff, oldB, newB map[string]benchResult, tolPct float64) {
	for name, o := range oldB {
		n, ok := newB[name]
		if !ok {
			d.Removed = append(d.Removed, name)
			continue
		}
		row := Row{Name: name, Unit: "ns/op", Old: o.NsPerOp, New: n.NsPerOp, Pct: pct(o.NsPerOp, n.NsPerOp)}
		if o.AllocsPerOp != n.AllocsPerOp {
			row.Note = fmt.Sprintf("allocs/op %s -> %s", num(o.AllocsPerOp), num(n.AllocsPerOp))
		}
		d.place(row, tolPct)
	}
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
}

func compareSamples(d *Diff, oldM, newM map[string]obs.Sample, tolPct float64) {
	for name, o := range oldM {
		n, ok := newM[name]
		if !ok {
			d.Removed = append(d.Removed, name)
			continue
		}
		unit, oldV := primary(o)
		_, newV := primary(n)
		row := Row{Name: name, Unit: unit, Old: oldV, New: newV, Pct: pct(oldV, newV)}
		if o.Quantiles != nil && n.Quantiles != nil && o.Quantiles.P95 != n.Quantiles.P95 {
			row.Note = fmt.Sprintf("p95 %s -> %s", num(o.Quantiles.P95), num(n.Quantiles.P95))
		}
		d.place(row, tolPct)
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
}

// place routes a compared row into regressions, improvements or the
// stable tally. "Bigger is worse" holds for every primary obsdiff
// compares (ns/op, counts, totals): metric counters here are work
// counters (DP cells, probes, retries), where growth means regression.
func (d *Diff) place(row Row, tolPct float64) {
	switch {
	case math.Abs(row.Pct) <= tolPct:
		d.Stable++
	case row.Pct > 0:
		d.Regressions = append(d.Regressions, row)
	default:
		d.Improvements = append(d.Improvements, row)
	}
}

// rank orders rows by |percent delta| descending — worst regression /
// best improvement first — with name order breaking ties (and +Inf rows,
// which all tie, resolved deterministically).
func rank(rows []Row, _ bool) {
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := math.Abs(rows[i].Pct), math.Abs(rows[j].Pct)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Name < rows[j].Name
	})
}

// num renders a float the way the repo's deterministic dumps do: the
// shortest representation that round-trips.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func pctStr(v float64) string {
	if math.IsInf(v, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

// WriteText renders the ranked human-readable report.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# obsdiff (%s): %s vs %s\n", d.Kind, d.OldPath, d.NewPath)
	section := func(title string, rows []Row) {
		fmt.Fprintf(w, "# %s: %d\n", title, len(rows))
		for _, r := range rows {
			fmt.Fprintf(w, "  %-8s %s %s %s -> %s", pctStr(r.Pct), r.Name, r.Unit, num(r.Old), num(r.New))
			if r.Note != "" {
				fmt.Fprintf(w, " (%s)", r.Note)
			}
			fmt.Fprintln(w)
		}
	}
	section("regressions", d.Regressions)
	section("improvements", d.Improvements)
	fmt.Fprintf(w, "# added: %d\n", len(d.Added))
	for _, n := range d.Added {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintf(w, "# removed: %d\n", len(d.Removed))
	for _, n := range d.Removed {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintf(w, "# stable: %d within ±%s%%\n", d.Stable, num(d.TolPct))
}

// MaxRegression returns the largest finite-or-infinite regression
// percentage (0 when there are none).
func (d *Diff) MaxRegression() float64 {
	if len(d.Regressions) == 0 {
		return 0
	}
	return d.Regressions[0].Pct // ranked worst-first
}

func main() {
	tol := flag.Float64("tol", 2, "percent delta below which a row counts as stable")
	maxRegress := flag.Float64("max-regress", 0, "fail when any regression exceeds this percent (0 = report only)")
	asJSON := flag.Bool("json", false, "emit the diff as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [-tol P] [-max-regress P] [-json] OLD NEW")
		os.Exit(2)
	}
	if err := mainErr(os.Stdout, flag.Arg(0), flag.Arg(1), *tol, *maxRegress, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", err)
		os.Exit(1)
	}
}

func mainErr(out io.Writer, oldPath, newPath string, tol, maxRegress float64, asJSON bool) error {
	if tol < 0 || math.IsNaN(tol) {
		return fmt.Errorf("-tol must be a non-negative percentage, got %v", tol)
	}
	oldS, err := load(oldPath)
	if err != nil {
		return err
	}
	newS, err := load(newPath)
	if err != nil {
		return err
	}
	d, err := compare(oldS, newS, tol)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return err
		}
	} else {
		d.WriteText(out)
	}
	if maxRegress > 0 {
		if worst := d.MaxRegression(); worst > maxRegress {
			return fmt.Errorf("regression gate: worst regression %s exceeds %s%%",
				pctStr(worst), num(maxRegress))
		}
	}
	return nil
}
