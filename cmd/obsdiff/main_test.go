package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffCommittedBenchReports pins the tool against the repo's own
// committed trajectory: BENCH_PR7.json vs BENCH_PR8.json.
func TestDiffCommittedBenchReports(t *testing.T) {
	run := func() string {
		t.Helper()
		var out bytes.Buffer
		if err := mainErr(&out, "../../BENCH_PR7.json", "../../BENCH_PR8.json", 2, 0, false); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	report := run()

	if !strings.Contains(report, "# obsdiff (bench): ../../BENCH_PR7.json vs ../../BENCH_PR8.json") {
		t.Fatalf("missing header:\n%s", report)
	}
	// PR8 added the per-primitive obs benchmarks; the diff must surface
	// them as added rows, sorted.
	for _, name := range []string{"obs/series/disabled", "obs/series/enabled", "obs/histogram/disabled"} {
		if !strings.Contains(report, "  "+name+"\n") {
			t.Fatalf("added benchmark %s not reported:\n%s", name, report)
		}
	}
	// Every benchmark present in PR7 is still present in PR8.
	if !strings.Contains(report, "# removed: 0\n") {
		t.Fatalf("unexpected removals:\n%s", report)
	}
	if report != run() {
		t.Fatal("report not deterministic across runs")
	}
}

func TestDiffJSONOutputRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := mainErr(&out, "../../BENCH_PR7.json", "../../BENCH_PR8.json", 2, 0, true); err != nil {
		t.Fatal(err)
	}
	var d Diff
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if d.Kind != "bench" || len(d.Added) < 6 {
		t.Fatalf("diff = kind %q, %d added", d.Kind, len(d.Added))
	}
	// Ranked: regressions worst-first, improvements best-first.
	for i := 1; i < len(d.Regressions); i++ {
		if math.Abs(d.Regressions[i].Pct) > math.Abs(d.Regressions[i-1].Pct) {
			t.Fatalf("regressions not ranked: %v", d.Regressions)
		}
	}
	for i := 1; i < len(d.Improvements); i++ {
		if math.Abs(d.Improvements[i].Pct) > math.Abs(d.Improvements[i-1].Pct) {
			t.Fatalf("improvements not ranked: %v", d.Improvements)
		}
	}
}

// writeFile drops JSON content into dir and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffMetricsAcrossStatuszAndReport(t *testing.T) {
	dir := t.TempDir()
	// A statusz snapshot ("metrics" key) against a metrics.json report
	// ("series" key): same sample schema, so they diff cleanly.
	oldP := writeFile(t, dir, "statusz.json", `{"tool":"ampsched","metrics":[
		{"name":"dp.cells","kind":"counter","count":1000},
		{"name":"occ","kind":"gauge","value":0.8},
		{"name":"lat","kind":"loghist","count":50,"quantiles":{"p50":1,"p95":10,"p99":20}},
		{"name":"gone","kind":"counter","count":7}]}`)
	newP := writeFile(t, dir, "metrics.json", `{"tool":"experiments","series":[
		{"name":"dp.cells","kind":"counter","count":1500},
		{"name":"occ","kind":"gauge","value":0.4},
		{"name":"lat","kind":"loghist","count":50,"quantiles":{"p50":1,"p95":12,"p99":20}},
		{"name":"fresh","kind":"counter","count":3}]}`)
	var out bytes.Buffer
	if err := mainErr(&out, oldP, newP, 2, 0, false); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"+50.0%   dp.cells count 1000 -> 1500",
		"-50.0%   occ value 0.8 -> 0.4",
		"# added: 1\n  fresh",
		"# removed: 1\n  gone",
		"# stable: 1", // lat: count unchanged, p95 drift is a note not a delta
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestDiffRejectsMixedKinds(t *testing.T) {
	dir := t.TempDir()
	m := writeFile(t, dir, "m.json", `{"series":[{"name":"x","kind":"counter","count":1}]}`)
	err := mainErr(&bytes.Buffer{}, m, "../../BENCH_PR8.json", 2, 0, false)
	if err == nil || !strings.Contains(err.Error(), "cannot diff") {
		t.Fatalf("err = %v", err)
	}
}

func TestDiffRejectsUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	bad := writeFile(t, dir, "bad.json", `{"hello":"world"}`)
	err := mainErr(&bytes.Buffer{}, bad, bad, 2, 0, false)
	if err == nil || !strings.Contains(err.Error(), "not a benchreport") {
		t.Fatalf("err = %v", err)
	}
}

func TestDiffRegressionGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeFile(t, dir, "old.json", `{"benchmarks":[{"name":"b","iters":1,"ns_per_op":100}]}`)
	newP := writeFile(t, dir, "new.json", `{"benchmarks":[{"name":"b","iters":1,"ns_per_op":200}]}`)
	var out bytes.Buffer
	err := mainErr(&out, oldP, newP, 2, 40, false)
	if err == nil || !strings.Contains(err.Error(), "regression gate") {
		t.Fatalf("err = %v", err)
	}
	// The report is still written before the gate fires.
	if !strings.Contains(out.String(), "+100.0%") {
		t.Fatalf("report not written before gate:\n%s", out.String())
	}
	// Within the allowance the same diff passes.
	if err := mainErr(&bytes.Buffer{}, oldP, newP, 2, 150, false); err != nil {
		t.Fatal(err)
	}
}

func TestDiffGrowthFromZeroRanksFirst(t *testing.T) {
	dir := t.TempDir()
	oldP := writeFile(t, dir, "old.json", `{"series":[
		{"name":"a","kind":"counter"},
		{"name":"b","kind":"counter","count":100}]}`)
	newP := writeFile(t, dir, "new.json", `{"series":[
		{"name":"a","kind":"counter","count":5},
		{"name":"b","kind":"counter","count":150}]}`)
	var out bytes.Buffer
	if err := mainErr(&out, oldP, newP, 2, 0, false); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	ia, ib := strings.Index(report, "+inf%"), strings.Index(report, "+50.0%")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("growth-from-zero not ranked first:\n%s", report)
	}
}
