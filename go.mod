module ampsched

go 1.22
