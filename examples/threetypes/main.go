// Three-type study: the paper's platform has two core types (big/little),
// but the resource model and HeRAD's dynamic program generalize to any
// number of types. This example schedules synthetic chains on a
// big/medium/little platform via the general k-type fill, cross-checks a
// small instance against exhaustive enumeration, and shows the two-type
// strategies (2CATAC, FERTAC, OTAC) declining the platform through the
// registry's type gate.
package main

import (
	"fmt"
	"math/rand"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/herad"
	"ampsched/internal/strategy"
)

func main() {
	// chaingen.Default3 extends the paper's profile (§VI-A1) with a
	// "medium" type: slowdown vs big drawn from [1,3], between big (1)
	// and little ([1,5]). Extra types append after the canonical two, so
	// the platform's type order is big, little, medium.
	r, err := core.ParseResources("4B,8L,2M") // same value as core.Res(4, 8, 2).With(2, 'M' name)
	if err != nil {
		panic(err)
	}
	cfg := chaingen.Default3(12, 0.5)
	rng := rand.New(rand.NewSource(1))

	fmt.Printf("12-task chains on R=%v (big/little/medium)\n\n", r)
	for i := 0; i < 3; i++ {
		c := chaingen.Generate(cfg, rng)
		s := herad.Schedule(c, r)
		fmt.Printf("chain %d: period %6.2f  usage %v  %v\n",
			i, s.Period(c), s.Usage(r.NumTypes()), s)
	}

	// On an instance small enough to enumerate, the general DP matches
	// the exhaustive optimum exactly.
	small := chaingen.Generate(chaingen.Default3(6, 0.5), rng)
	sr := core.Res(2, 2, 1)
	opt := brute.MinPeriod(small, sr)
	got := herad.Schedule(small, sr).Period(small)
	fmt.Printf("\n6-task cross-check on R=%v: HeRAD %.2f, brute-force optimum %.2f\n", sr, got, opt)

	// The two-type strategies are constrained to the paper's platform
	// shape and reject a three-type request with a descriptive error.
	c := chaingen.Generate(cfg, rng)
	fmt.Println("\nregistry type gate:")
	for _, s := range strategy.All() {
		if err := strategy.CheckTypes(s, c, r); err != nil {
			fmt.Printf("  %-9s %v\n", s.Name(), err)
		} else {
			fmt.Printf("  %-9s ok\n", s.Name())
		}
	}
}
