// Power-aware scheduling: the paper's secondary objective is to use as
// many little (efficient) cores as necessary — and no more — to reach the
// minimal period. This example sweeps a growing little-core budget and
// shows HeRAD trading big cores for little ones at constant (optimal)
// throughput, compared against the big-cores-only OTAC baseline.
package main

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/platform"
	"ampsched/internal/strategy"
)

func main() {
	p := platform.X7Ti()
	chain := p.Chain()
	herad := strategy.MustParse("herad")
	fmt.Printf("workload: DVB-S2 receiver profile on %s (23 tasks)\n\n", p.Name)

	fmt.Println("HeRAD with 6 big cores and a growing little-core budget:")
	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "R", "period µs", "throughput", "cores b/l", "note")
	bigOnly := core.Res(6, 0)
	base := strategy.MustParse("otac-b").Schedule(chain, bigOnly, strategy.Options{}).Period(chain)
	fmt.Printf("%-10s %-12.1f %-12.0f %-10s %s\n", "(6B,0L)", base,
		core.Throughput(base, p.Interframe), "6/0", "OTAC (B) baseline")
	for l := 2; l <= 10; l += 2 {
		r := core.Res(6, l)
		s := herad.Schedule(chain, r, strategy.Options{})
		b, lu := s.CoresUsed()
		period := s.Period(chain)
		note := ""
		if period < base*0.999 {
			note = fmt.Sprintf("%.1f× faster than big-only", base/period)
		}
		fmt.Printf("%-10s %-12.1f %-12.0f %d/%-8d %s\n", r.String(), period,
			core.Throughput(period, p.Interframe), b, lu, note)
	}

	fmt.Println("\nLittle cores absorb the replicable stages, freeing big cores for")
	fmt.Println("the sequential bottleneck — throughput rises while the power proxy")
	fmt.Println("(big-core usage) stays flat. With ties, HeRAD prefers little cores:")
	tie := core.MustChain([]core.Task{
		{Name: "even", Weight: core.Weights(100, 100), Replicable: false},
	})
	s := herad.Schedule(tie, core.Res(4, 4), strategy.Options{})
	b, l := s.CoresUsed()
	fmt.Printf("  equal-speed task on (4B,4L): HeRAD uses %d big, %d little\n", b, l)

	// §VII extensions: a watts-level power model, and stage co-location
	// (fusing adjacent light single-core stages at equal period).
	pm := core.DefaultPowerModel()
	r := core.Res(6, 8)
	sched := herad.Schedule(chain, r, strategy.Options{})
	period := sched.Period(chain)
	fmt.Printf("\nPower model (%gW big / %gW little cores), period/power trade-off\n",
		pm.Watts[core.Big], pm.Watts[core.Little])
	fmt.Println("via stage co-location (fusing single-core stages up to a relaxed period):")
	for _, slack := range []float64{1.0, 1.5, 2.0, 3.0} {
		fused := sched.Fuse(chain, period*slack)
		bb, ll := fused.CoresUsed()
		fmt.Printf("  ≤%.1f× period: %d stages, (%dB,%dL) cores, %4.0f W, %6.2f mJ/frame, period %.0f µs\n",
			slack, len(fused.Stages), bb, ll, pm.Power(fused),
			1000*pm.EnergyPerFrame(fused, fused.Period(chain)), fused.Period(chain))
	}
}
