// DVB-S2 receiver: the paper's real-world workload, running for real.
// This example builds the full transceiver (transmitter → impaired
// channel → 23-task receiver), profiles the receiver's actual Go task
// latencies on this machine, computes an optimal heterogeneous schedule
// with HeRAD, and executes it on the streampu pipeline runtime — decoding
// live frames and reporting throughput and residual BER.
package main

import (
	"fmt"
	"log"

	"ampsched/internal/core"
	"ampsched/internal/dvbs2"
	"ampsched/internal/experiments"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
)

func main() {
	// Reduced frame size (N=1620, GF(2^11) BCH) so the example runs in
	// seconds; dvbs2.Default() gives the paper's full numerology.
	params := dvbs2.Test()
	fmt.Printf("DVB-S2-like link: N=%d K_ldpc=%d K_bch=%d, QPSK, %d-symbol PLFRAME\n",
		params.NLdpc, params.KLdpc, params.KBch(), params.FrameSymbols())

	// 1. Profile the receiver's real task latencies on this machine.
	chain, micros, err := experiments.LiveProfile(params, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured task latencies (µs):")
	for i := 0; i < chain.Len(); i++ {
		t := chain.Task(i)
		mark := " "
		if t.Replicable {
			mark = "*"
		}
		fmt.Printf("  τ%02d%s %-40s %8.1f\n", i+1, mark, t.Name, micros[i])
	}
	fmt.Println("  (* = replicable)")

	// 2. Schedule on 3 big + 2 little virtual cores with HeRAD.
	r := core.Res(3, 2)
	sol := strategy.MustParse("herad").Schedule(chain, r, strategy.Options{})
	fmt.Printf("\nHeRAD schedule on R=%v: %v\n", r, sol)
	fmt.Printf("expected period %.1f µs → %.0f frames/s\n",
		sol.Period(chain), 1e6/sol.Period(chain))

	// 3. Execute: the pipeline decodes real frames end to end.
	tx, err := dvbs2.NewTransmitter(params)
	if err != nil {
		log.Fatal(err)
	}
	rx := dvbs2.NewReceiver(tx, dvbs2.NewTxStream(tx, dvbs2.DefaultChannel()))
	pipe, err := streampu.New(rx.Tasks(), sol, streampu.Options{QueueCap: 2})
	if err != nil {
		log.Fatal(err)
	}
	st, err := pipe.Run(200, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran %d frames in %.2fs → measured %.0f frames/s\n",
		st.Frames, st.Elapsed.Seconds(), st.FPS)
	fmt.Printf("decoded %d frames after lock (skipped %d during acquisition)\n",
		rx.Monitor.Frames.Load(), rx.Monitor.Skipped.Load())
	fmt.Printf("residual BER %.2e, frame errors %d, BCH failures %d\n",
		rx.Monitor.BER(), rx.Monitor.FrameErrors.Load(), rx.Monitor.BCHFailures.Load())
}
