// Synthetic study: generate random partially-replicable task chains like
// the paper's simulation campaign (§VI-A1) and compare the scheduling
// strategies' period quality and core usage — a miniature Table I.
package main

import (
	"fmt"
	"math/rand"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/experiments"
	"ampsched/internal/stats"
)

func main() {
	const chains = 200
	r := core.Resources{Big: 10, Little: 10}
	fmt.Printf("%d random 20-task chains on R=%v, varying stateless ratio\n\n", chains, r)

	for _, sr := range []float64{0.2, 0.5, 0.8} {
		rng := rand.New(rand.NewSource(42))
		cfg := chaingen.Default(20, sr)
		slow := map[string][]float64{}
		used := map[string][]float64{}
		for i := 0; i < chains; i++ {
			c := chaingen.Generate(cfg, rng)
			opt := experiments.Run(experiments.StratHeRAD, c, r).Period(c)
			for _, name := range experiments.Strategies {
				s := experiments.Run(name, c, r)
				slow[name] = append(slow[name], s.Period(c)/opt)
				b, l := s.CoresUsed()
				used[name] = append(used[name], float64(b+l))
			}
		}
		fmt.Printf("SR = %.1f\n", sr)
		fmt.Printf("  %-9s %6s %6s %6s %7s\n", "strategy", "%opt", "avg", "max", "cores")
		for _, name := range experiments.Strategies {
			fmt.Printf("  %-9s %5.1f%% %6.3f %6.3f %7.2f\n", name,
				100*stats.FractionAtMost(slow[name], 1),
				stats.Mean(slow[name]), stats.Max(slow[name]), stats.Mean(used[name]))
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Table I): HeRAD always optimal; 2CATAC within ~1%;")
	fmt.Println("FERTAC within a few % using ~1 extra core; OTAC variants lag badly.")
}
