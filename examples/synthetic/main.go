// Synthetic study: generate random partially-replicable task chains like
// the paper's simulation campaign (§VI-A1) and compare the scheduling
// strategies' period quality and core usage — a miniature Table I. The
// whole (chain × strategy) campaign is planned concurrently through
// strategy.PlanBatch; the statistics are identical to a serial run.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/stats"
	"ampsched/internal/strategy"
)

func main() {
	const chains = 200
	r := core.Res(10, 10)
	names := strategy.Names()
	fmt.Printf("%d random 20-task chains on R=%v, varying stateless ratio\n\n", chains, r)

	start := time.Now()
	planned := 0
	for _, sr := range []float64{0.2, 0.5, 0.8} {
		rng := rand.New(rand.NewSource(42))
		cfg := chaingen.Default(20, sr)
		var reqs []strategy.Request
		for i := 0; i < chains; i++ {
			c := chaingen.Generate(cfg, rng)
			for _, s := range strategy.All() {
				reqs = append(reqs, strategy.Request{
					Chain: c, Resources: r, Scheduler: s, Label: s.Name(),
				})
			}
		}
		results := strategy.PlanBatch(reqs, 0) // 0 = one worker per CPU
		planned += len(results)

		slow := map[string][]float64{}
		used := map[string][]float64{}
		stride := len(names)
		for i := 0; i < chains; i++ {
			opt := results[i*stride].Period // HeRAD leads each chain's block
			for k, name := range names {
				res := results[i*stride+k]
				slow[name] = append(slow[name], res.Period/opt)
				b, l := res.Solution.CoresUsed()
				used[name] = append(used[name], float64(b+l))
			}
		}
		fmt.Printf("SR = %.1f\n", sr)
		fmt.Printf("  %-9s %6s %6s %6s %7s\n", "strategy", "%opt", "avg", "max", "cores")
		for _, name := range names {
			fmt.Printf("  %-9s %5.1f%% %6.3f %6.3f %7.2f\n", name,
				100*stats.FractionAtMost(slow[name], 1),
				stats.Mean(slow[name]), stats.Max(slow[name]), stats.Mean(used[name]))
		}
		fmt.Println()
	}
	fmt.Printf("planned %d schedules in %.2fs across the worker pool\n\n", planned, time.Since(start).Seconds())
	fmt.Println("Expected shape (paper Table I): HeRAD always optimal; 2CATAC within ~1%;")
	fmt.Println("FERTAC within a few % using ~1 extra core; OTAC variants lag badly.")
}
