// Quickstart: model a small partially-replicable task chain, schedule it
// on a heterogeneous platform with every registered strategy, and validate
// the best schedule with the discrete-event simulator.
package main

import (
	"fmt"
	"log"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/strategy"
)

func main() {
	// A five-task chain: weights are (big, little) latencies in µs;
	// stateful tasks (Replicable: false) cannot be replicated.
	chain := core.MustChain([]core.Task{
		{Name: "capture", Weight: w(40, 90), Replicable: false},
		{Name: "filter", Weight: w(120, 300), Replicable: true},
		{Name: "demod", Weight: w(200, 520), Replicable: true},
		{Name: "decode", Weight: w(310, 700), Replicable: true},
		{Name: "emit", Weight: w(25, 60), Replicable: false},
	})
	// The platform: 2 big (performance) cores + 4 little (efficient) ones.
	r := core.Res(2, 4)

	fmt.Printf("chain: %d tasks, platform R=%v\n\n", chain.Len(), r)
	fmt.Printf("%-10s %-10s %-8s %s\n", "strategy", "period µs", "cores", "pipeline")
	// Every registered strategy, scheduled concurrently on a bounded
	// worker pool; results come back in registry (paper) order.
	var best core.Solution
	for _, res := range strategy.PlanAll(chain, r, strategy.Options{}, 0) {
		s := res.Solution
		if res.Request.Label == "HeRAD" {
			best = s
		}
		b, l := s.CoresUsed()
		fmt.Printf("%-10s %-10.1f (%d,%d)    %v\n", res.Request.Label, res.Period, b, l, s)
	}

	// Validate the optimal schedule by simulating 2000 frames through the
	// pipeline with bounded buffers.
	res, err := desim.Simulate(chain, best, desim.Config{Frames: 2000, QueueCap: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: period %.1f µs (analytic %.1f), throughput %.0f frames/s, latency %.1f µs\n",
		res.Period, best.Period(chain), res.Throughput(1), res.Latency)
}

func w(big, little float64) []float64 {
	return core.Weights(big, little)
}
