// Package ampsched_test holds the benchmark harness that regenerates the
// paper's evaluation artifacts: one benchmark per table and figure (run
// with `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices called out in DESIGN.md (2CATAC memoization, desim queue
// capacities, HeRAD scaling in tasks vs resources).
//
// The benchmarks exercise reduced campaign sizes so a full -bench=. pass
// stays in the minutes range on a laptop; cmd/experiments runs the
// paper-sized campaigns.
package ampsched_test

import (
	"fmt"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/experiments"
	"ampsched/internal/fertac"
	"ampsched/internal/herad"
	"ampsched/internal/obs"
	"ampsched/internal/otac"
	"ampsched/internal/platform"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
	"ampsched/internal/twocatac"
)

// BenchmarkTable1 regenerates one Table I scenario (R=(10,10), SR=0.5):
// all five strategies over a batch of random 20-task chains.
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Table1Config{Chains: 20, Tasks: 20, Seed: 20250704}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells := experiments.Table1Scenario(cfg, core.Res(10, 10), 0.5)
		if cells[0].PctOptimal != 100 {
			b.Fatal("HeRAD not optimal")
		}
	}
}

// BenchmarkFig1 regenerates the slowdown CDFs from a Table I scenario.
func BenchmarkFig1(b *testing.B) {
	cfg := experiments.Table1Config{Chains: 40, Tasks: 20, Seed: 1}
	cells := experiments.Table1Scenario(cfg, core.Res(4, 16), 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig1(cells); len(s) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig2 regenerates the FERTAC-vs-HeRAD core-usage heatmaps.
func BenchmarkFig2(b *testing.B) {
	cfg := experiments.Table1Config{Chains: 20, Tasks: 20, Seed: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(cfg)
		if res.All.Total() != 20 {
			b.Fatal("bad total")
		}
	}
}

// benchChains builds a deterministic batch of chains for the scheduler
// benchmarks (Figs. 3–4).
func benchChains(n int, sr float64, count int) []*core.Chain {
	return chaingen.GenerateMany(chaingen.Default(n, sr), 7, count)
}

// BenchmarkFig3 regenerates Fig. 3's execution-time rows: each strategy's
// scheduling time for growing task counts at R=(20,20), SR=0.5.
// (2CATAC stops at 60 tasks, as in the paper.)
func BenchmarkFig3(b *testing.B) {
	r := core.Res(20, 20)
	for _, n := range []int{20, 40, 60, 80, 120, 160} {
		chains := benchChains(n, 0.5, 8)
		for _, strat := range experiments.Strategies {
			if strat == experiments.StratTwoCAT && n > 60 {
				continue
			}
			if strat == experiments.StratHeRAD && n > 120 {
				continue // minutes per op at (20,20)×160 on small machines
			}
			b.Run(fmt.Sprintf("%s/tasks=%d", strat, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := experiments.Run(strat, chains[i%len(chains)], r)
					if s.IsEmpty() {
						b.Fatal("no schedule")
					}
				}
			})
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4's rows: scheduling time for growing
// resource counts at a fixed 20-task chain, SR=0.5.
func BenchmarkFig4(b *testing.B) {
	chains := benchChains(20, 0.5, 8)
	for _, cores := range []int{20, 40, 80, 160} {
		r := core.Res(cores, cores)
		for _, strat := range experiments.Strategies {
			b.Run(fmt.Sprintf("%s/cores=%d", strat, 2*cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := experiments.Run(strat, chains[i%len(chains)], r)
					if s.IsEmpty() {
						b.Fatal("no schedule")
					}
				}
			})
		}
	}
}

// BenchmarkTable2 regenerates Table II's schedule computations and
// discrete-event validations for all 20 rows (simulation only; the
// runtime rows are wall-clock experiments driven by cmd/experiments).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Table2Config{RunReal: false})
		if err != nil || len(rows) != 20 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkTable3 regenerates the Table III model chains from the
// embedded profiles (the scheduling input of the real-world experiment).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) != 23 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5's per-strategy throughput series via
// the discrete-event simulator on the Mac Studio full configuration.
func BenchmarkFig5(b *testing.B) {
	p := platform.MacStudio()
	c := p.Chain()
	r := core.Res(16, 4)
	sols := map[string]core.Solution{}
	for _, strat := range experiments.Strategies {
		sols[strat] = experiments.Run(strat, c, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sol := range sols {
			res, err := desim.Simulate(c, sol, desim.Config{Frames: 1000, QueueCap: 2})
			if err != nil || res.Period <= 0 {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6 regenerates the summary roll-up.
func BenchmarkFig6(b *testing.B) {
	cfg := experiments.Table1Config{Chains: 20, Tasks: 20, Seed: 3}
	t1 := experiments.Table1Scenario(cfg, core.Res(10, 10), 0.5)
	t2, err := experiments.Table2(experiments.Table2Config{RunReal: false})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := experiments.Fig6(t1, t2); len(s) != 5 {
			b.Fatal("bad summary")
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblation2CATACMemo compares the paper-verbatim exponential
// 2CATAC recursion against the memoized variant on chains near the
// paper's 60-task practicality limit.
func BenchmarkAblation2CATACMemo(b *testing.B) {
	r := core.Res(10, 10)
	for _, n := range []int{20, 40, 60} {
		chains := benchChains(n, 0.5, 4)
		b.Run(fmt.Sprintf("plain/tasks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				twocatac.Schedule(chains[i%len(chains)], r)
			}
		})
		b.Run(fmt.Sprintf("memo/tasks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				twocatac.ScheduleMemo(chains[i%len(chains)], r)
			}
		})
	}
}

// BenchmarkHeRADWavefront measures the wavefront-parallel DP fill across
// worker counts on a pool-sized problem (the diagonals clear the parGrain
// serial cut-off). The schedule is identical for every row; the speedup —
// bounded by the machine's core count, so expect none under GOMAXPROCS=1 —
// is the whole point. workers=0 is the GOMAXPROCS default.
func BenchmarkHeRADWavefront(b *testing.B) {
	chains := benchChains(48, 0.5, 4)
	r := core.Res(16, 16)
	ref := herad.ScheduleOpts(chains[0], r, herad.Options{Workers: 1})
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := herad.ScheduleOpts(chains[i%len(chains)], r, herad.Options{Workers: workers})
				if s.IsEmpty() {
					b.Fatal("no schedule")
				}
				if i%len(chains) == 0 && s.String() != ref.String() {
					b.Fatalf("workers=%d changed the schedule: %v vs %v", workers, s, ref)
				}
			}
		})
	}
}

// BenchmarkAblationMergePostPass measures the cost of HeRAD's
// replicable-stage merge post-pass (raw extraction vs merged).
func BenchmarkAblationMergePostPass(b *testing.B) {
	chains := benchChains(40, 0.8, 4)
	r := core.Res(8, 8)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			herad.ScheduleRaw(chains[i%len(chains)], r)
		}
	})
	b.Run("merged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			herad.Schedule(chains[i%len(chains)], r)
		}
	})
}

// BenchmarkAblationDesimQueueCap sweeps the inter-stage buffer capacity:
// deterministic flow lines reach the bottleneck rate for any capacity ≥ 1,
// so the simulated period should not change — only the simulation cost.
func BenchmarkAblationDesimQueueCap(b *testing.B) {
	p := platform.X7Ti()
	c := p.Chain()
	sol := herad.Schedule(c, core.Res(6, 8))
	for _, cap := range []int{0, 1, 2, 8} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := desim.Simulate(c, sol, desim.Config{Frames: 1000, QueueCap: cap})
				if err != nil {
					b.Fatal(err)
				}
				if res.Period < 1341 || res.Period > 1343 {
					b.Fatalf("cap %d changed the period: %v", cap, res.Period)
				}
			}
		})
	}
}

// BenchmarkAblationStaticVsDynamic compares the static interval-mapped
// pipeline against the dynamic central-queue executor on a chain of
// zero-latency tasks: with no modeled work, the measured time is pure
// per-frame scheduling overhead — the §II argument for static schedules
// at tens-of-µs task granularity.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	mkTasks := func(n int) []streampu.Task {
		var out []streampu.Task
		for i := 0; i < n; i++ {
			out = append(out, &streampu.TimedTask{TaskName: fmt.Sprintf("t%d", i), Rep: true})
		}
		return out
	}
	for _, n := range []int{8, 16} {
		tasks := mkTasks(n)
		sol := core.Solution{Stages: []core.Stage{{Start: 0, End: n - 1, Cores: 4, Type: core.Big}}}
		b.Run(fmt.Sprintf("static/tasks=%d", n), func(b *testing.B) {
			p, err := streampu.New(tasks, sol, streampu.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			st, err := p.Run(b.N, nil)
			if err != nil || st.Frames != b.N {
				b.Fatal(err)
			}
		})
		b.Run(fmt.Sprintf("dynamic/tasks=%d", n), func(b *testing.B) {
			st, err := streampu.Dynamic(tasks, b.N,
				streampu.DynamicOptions{Workers: streampu.PlatformWorkers(4, 0)}, nil)
			if err != nil || st.Frames != b.N {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRegistry drives every registered strategy through the unified
// interface on the paper's two real platform chains (Table II
// configurations). Brute is skipped: exhaustive enumeration of the 23-task
// DVB-S2 chain is intractable.
func BenchmarkRegistry(b *testing.B) {
	platforms := []struct {
		name string
		c    *core.Chain
		r    core.Resources
	}{
		{"mac", platform.MacStudio().Chain(), core.Res(16, 4)},
		{"x7", platform.X7Ti().Chain(), core.Res(6, 8)},
	}
	for _, p := range platforms {
		for _, s := range strategy.AllRegistered() {
			if s.Name() == "Brute" {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", p.name, s.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if sol := s.Schedule(p.c, p.r, strategy.Options{}); sol.IsEmpty() {
						b.Fatal("no schedule")
					}
				}
			})
		}
	}
}

// BenchmarkPlanBatch measures the concurrent planning layer against its
// serial fast path on a Table I-shaped request batch.
func BenchmarkPlanBatch(b *testing.B) {
	chains := benchChains(20, 0.5, 16)
	r := core.Res(10, 10)
	var reqs []strategy.Request
	for _, c := range chains {
		for _, s := range strategy.All() {
			reqs = append(reqs, strategy.Request{Chain: c, Resources: r, Scheduler: s})
		}
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := strategy.PlanBatch(reqs, workers)
				if len(res) != len(reqs) || res[0].Err != nil {
					b.Fatalf("bad batch: %d results, err %v", len(res), res[0].Err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead pins the cost of the metrics layer around a full
// HeRAD schedule through the registry:
//
//   - baseline: metrics compiled in, no registry supplied (the default).
//     Must show 0 extra allocs/op vs the pre-instrumentation code — the
//     nil-sink path is a handful of nil checks.
//   - enabled: a shared registry collecting every series.
//   - ops/disabled: the raw nil-sink metric operations alone; must report
//     exactly 0 allocs/op.
func BenchmarkObsOverhead(b *testing.B) {
	chains := benchChains(20, 0.5, 8)
	r := core.Res(10, 10)
	s := strategy.MustParse("herad")
	b.Run("schedule/disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sol := s.Schedule(chains[i%len(chains)], r, strategy.Options{}); sol.IsEmpty() {
				b.Fatal("no schedule")
			}
		}
	})
	b.Run("schedule/enabled", func(b *testing.B) {
		b.ReportAllocs()
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if sol := s.Schedule(chains[i%len(chains)], r, strategy.Options{Metrics: reg}); sol.IsEmpty() {
				b.Fatal("no schedule")
			}
		}
	})
	b.Run("ops/disabled", func(b *testing.B) {
		b.ReportAllocs()
		var reg *obs.Registry // nil sink: every lookup and update below is a nil check
		for i := 0; i < b.N; i++ {
			m := reg.Sub("herad")
			m.Counter("schedule.calls").Inc()
			m.Counter("dp.cells").Add(64)
			m.Gauge("workers").Set(8)
			m.Timer("schedule.ns").Start()()
			m.Histogram("request_us", obs.DurationBucketsUs).Observe(12)
		}
		if n := testing.AllocsPerRun(100, func() {
			reg.Sub("x").Counter("c").Inc()
		}); n != 0 {
			b.Fatalf("disabled metric ops allocate %v/op", n)
		}
	})
}

// BenchmarkSchedulers gives per-strategy single-instance timings at the
// paper's synthetic scale (20 tasks, R=(16,4)) for quick comparisons.
func BenchmarkSchedulers(b *testing.B) {
	chains := benchChains(20, 0.5, 8)
	r := core.Res(16, 4)
	b.Run("HeRAD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			herad.Schedule(chains[i%len(chains)], r)
		}
	})
	b.Run("2CATAC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			twocatac.Schedule(chains[i%len(chains)], r)
		}
	})
	b.Run("FERTAC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fertac.Schedule(chains[i%len(chains)], r)
		}
	})
	b.Run("OTAC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			otac.Schedule(chains[i%len(chains)], 20, core.Big)
		}
	})
}
